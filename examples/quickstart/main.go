// Quickstart: build a small cluster, run the energy-aware reallocation
// protocol for a few intervals, and inspect what the leader did.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ealb"
)

func main() {
	// A 100-server cluster whose servers start lightly loaded (uniform
	// 20-40%, the paper's low-load scenario). Everything is driven by
	// the seed: rerunning reproduces identical output.
	cfg := ealb.DefaultClusterConfig(100, ealb.LowLoad(), 42)
	c, err := ealb.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial regime distribution (R1..R5):", c.RegimeCounts())
	fmt.Printf("initial cluster load: %.1f%%\n\n", float64(c.ClusterLoad())*100)

	// Each interval the servers evaluate their operating regime, report
	// to the leader, and the leader brokers migrations / sleep decisions.
	stats, err := c.RunIntervals(context.Background(), 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		fmt.Printf("interval %2d: %2d migrations, %2d sleeping, ratio in-cluster/local = %.2f\n",
			s.Index, s.Migrations, s.Sleeping, s.Ratio)
	}

	fmt.Println("\nfinal regime distribution (awake servers):", c.RegimeCounts())
	fmt.Printf("servers asleep: %d of %d\n", c.SleepingCount(), len(c.Servers()))
	fmt.Printf("total energy: %v (%.3f kWh)\n", c.TotalEnergy(), c.TotalEnergy().KWh())
}
