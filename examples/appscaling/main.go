// Application scaling: reproduce the paper's Figure 3 dynamics for one
// configuration — the per-interval ratio of high-cost in-cluster
// (horizontal) scaling decisions to low-cost local (vertical) ones, under
// heavy load, where the crossover to local dominance happens within a few
// intervals.
//
// Run with:
//
//	go run ./examples/appscaling
package main

import (
	"fmt"
	"log"
	"strings"

	"ealb"
)

func main() {
	// The paper's high-load scenario: initial server load uniform in
	// 60-80%. Horizontal scaling is only possible while some servers
	// still have optimal-regime headroom; once they saturate, growth is
	// absorbed locally and vertical scaling dominates.
	run, err := ealb.RunClusterExperiment(400, ealb.HighLoad(), 11, 40)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("in-cluster / local decision ratio, 400 servers at 70% average load")
	fmt.Println("(each row is one reallocation interval; paper: local dominates after ~5)")
	fmt.Println()
	for i, r := range run.Ratios() {
		bar := int(r * 10)
		if bar > 60 {
			bar = 60
		}
		marker := " "
		if r >= 1 {
			marker = "*" // in-cluster decisions dominate
		}
		fmt.Printf("%2d %s %6.2f |%s\n", i+1, marker, r, strings.Repeat("#", bar))
	}

	fmt.Printf("\ncrossover to local dominance at interval %d\n", run.Crossover())
	fmt.Printf("mean ratio %.3f (std %.3f) — paper's Table 2 reports 0.52-0.55 at 70%% load\n",
		run.MeanRatio, run.StdRatio)

	// The same run at low load crosses over much later.
	low, err := ealb.RunClusterExperiment(400, ealb.LowLoad(), 11, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor comparison, at 30%% load the crossover lands at interval %d (paper: ~20)\n",
		low.Crossover())
}
