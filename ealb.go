// Package ealb is the public API of the energy-aware load balancing
// library, a from-scratch Go reproduction of Paya & Marinescu,
// "Energy-aware Load Balancing Policies for the Cloud Ecosystem"
// (arXiv:1401.2198, IPDPS workshops 2014).
//
// The library simulates a clustered cloud whose leader concentrates load
// on the smallest set of servers operating within an optimal energy
// regime and switches the rest to ACPI sleep states, subject to QoS
// constraints. Three layers are exposed:
//
//   - the cluster simulation (NewCluster / Cluster.RunIntervals), the
//     paper's §4-§5 protocol over heterogeneous servers with five
//     operating regimes R1-R5;
//   - the capacity-management policy farm (SimulatePolicy, StandardPolicies),
//     the §3 survey of reactive/predictive/optimal policies;
//   - the analytic homogeneous model (HomogeneousModel), §4's closed-form
//     E_ref/E_opt estimate;
//   - the simulation engine (NewEngine / Engine.RunScenario /
//     Engine.RunSweep), a worker pool that executes JSON-friendly
//     Scenario requests and multi-axis SweepSpec cross-products in
//     parallel with bit-identical-to-serial results, and the HTTP
//     scenario service built on it (NewScenarioHandler, cmd/ealb-serve);
//
// Every simulation entry point takes a context.Context and stops at its
// next preemption point (a reallocation interval, a decision slot, a
// queued job) when the context is cancelled, so services embedding the
// library can shed, cancel and drain work.
//
// plus the experiment runners (RunExperiment) that regenerate every table
// and figure of the paper. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// Everything is deterministic: the same seed reproduces a simulation
// bit for bit, on any platform, using only the standard library —
// including sweeps dispatched across many engine workers.
package ealb

import (
	"context"
	"io"
	"net/http"

	"ealb/internal/analytic"
	"ealb/internal/cluster"
	"ealb/internal/engine"
	"ealb/internal/experiments"
	"ealb/internal/farm"
	"ealb/internal/policy"
	"ealb/internal/serve"
	"ealb/internal/trace"
	"ealb/internal/units"
	"ealb/internal/workload"
)

// Quantity types re-exported for configuration.
type (
	// Watts is instantaneous power.
	Watts = units.Watts
	// Joules is energy.
	Joules = units.Joules
	// Seconds is simulated time.
	Seconds = units.Seconds
	// Fraction is a normalized quantity in [0,1] (loads, regimes).
	Fraction = units.Fraction
)

// Cluster simulation (the paper's primary contribution).
type (
	// ClusterConfig parameterizes a cluster simulation; start from
	// DefaultClusterConfig.
	ClusterConfig = cluster.Config
	// Cluster is a simulated cluster with its leader protocol.
	Cluster = cluster.Cluster
	// IntervalStats summarizes one reallocation interval.
	IntervalStats = cluster.IntervalStats
	// SleepPolicy selects how consolidation chooses sleep states.
	SleepPolicy = cluster.SleepPolicy
	// Band is a uniform initial-load band.
	Band = workload.Band
)

// Sleep policies.
const (
	// SleepAuto applies the paper's 60% rule (§6).
	SleepAuto = cluster.SleepAuto
	// SleepC3Only always uses the shallow C3 state.
	SleepC3Only = cluster.SleepC3Only
	// SleepC6Only always uses the deep C6 state.
	SleepC6Only = cluster.SleepC6Only
	// SleepNever is the always-on baseline.
	SleepNever = cluster.SleepNever
)

// DefaultClusterConfig returns the §5 experiment parameterization for a
// cluster of the given size and initial load band.
func DefaultClusterConfig(size int, band Band, seed uint64) ClusterConfig {
	return cluster.DefaultConfig(size, band, seed)
}

// NewCluster builds and populates a cluster simulation.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// LowLoad returns the paper's 20-40% initial-load band.
func LowLoad() Band { return workload.LowLoad() }

// HighLoad returns the paper's 60-80% initial-load band.
func HighLoad() Band { return workload.HighLoad() }

// Federated farm simulation: a farm of independent clusters behind a
// front-end dispatcher routing newly arriving applications (§4's
// hierarchical cloud). Note this is distinct from FarmConfig, the §3
// capacity-management policy farm below.
type (
	// ClusterFarm is a federation of clusters with a front-end
	// dispatcher.
	ClusterFarm = farm.Farm
	// ClusterFarmConfig parameterizes a federated simulation; start from
	// DefaultClusterFarmConfig.
	ClusterFarmConfig = farm.Config
	// FarmIntervalStats summarizes one farm interval: per-cluster
	// statistics plus farm-level aggregates (total power, sleep counts,
	// overload fraction, dispatch counts).
	FarmIntervalStats = farm.IntervalStats
	// DispatchPolicy selects how the front-end routes new applications.
	DispatchPolicy = farm.DispatchPolicy
	// FarmRun is the raw outcome of a federated engine scenario.
	FarmRun = engine.FarmRun
)

// Dispatch policies.
const (
	// DispatchRoundRobin cycles through the clusters — the oblivious
	// baseline.
	DispatchRoundRobin = farm.DispatchRoundRobin
	// DispatchLeastLoaded routes to the cluster with the lowest mean
	// load.
	DispatchLeastLoaded = farm.DispatchLeastLoaded
	// DispatchEnergyHeadroom routes to the cluster whose awake servers
	// can absorb the most demand without waking anyone.
	DispatchEnergyHeadroom = farm.DispatchEnergyHeadroom
)

// DefaultClusterFarmConfig returns the §5 parameterization federated
// across clusters of size servers each, with the default open arrival
// workload.
func DefaultClusterFarmConfig(clusters, size int, band Band, seed uint64) ClusterFarmConfig {
	return farm.DefaultConfig(clusters, size, band, seed)
}

// NewClusterFarm builds and populates a federated farm simulation. Its
// RunIntervals accepts an *Engine as the runner to advance clusters in
// parallel (nil advances them serially; results are byte-identical).
func NewClusterFarm(cfg ClusterFarmConfig) (*ClusterFarm, error) { return farm.New(cfg) }

// ParseDispatchPolicy converts a dispatch policy name (see
// DispatchPolicyNames) into a DispatchPolicy.
func ParseDispatchPolicy(spec string) (DispatchPolicy, error) { return farm.ParseDispatch(spec) }

// DispatchPolicyNames lists the policies ParseDispatchPolicy accepts:
// round-robin, least-loaded and energy-headroom.
func DispatchPolicyNames() []string { return farm.DispatchPolicies() }

// Capacity-management policies (§3).
type (
	// Policy decides farm capacity for the next slot.
	Policy = policy.Policy
	// FarmConfig parameterizes the policy farm simulation.
	FarmConfig = policy.FarmConfig
	// PolicyResult summarizes one policy run.
	PolicyResult = policy.Result
	// RateFunc is a request-arrival rate profile.
	RateFunc = workload.RateFunc
)

// DefaultFarmConfig returns the standard policy-comparison farm.
func DefaultFarmConfig() FarmConfig { return policy.DefaultFarmConfig() }

// SimulatePolicy runs one capacity-management policy against a workload.
// Cancelling the context abandons the run at the next decision slot.
func SimulatePolicy(ctx context.Context, cfg FarmConfig, pol Policy, rate RateFunc) (PolicyResult, error) {
	return policy.Simulate(ctx, cfg, pol, rate)
}

// ComparePolicies runs several policies against the same workload.
func ComparePolicies(ctx context.Context, cfg FarmConfig, pols []Policy, rate RateFunc) ([]PolicyResult, error) {
	return policy.Compare(ctx, cfg, pols, rate)
}

// StandardPolicies returns the §3 policy line-up: reactive, reactive with
// extra capacity, autoscale, moving-window, linear-regression, and the
// optimal oracle (which needs the true rate function and setup time).
func StandardPolicies(setup Seconds, rate RateFunc) []Policy {
	return policy.StandardSet(setup, rate)
}

// StandardPoliciesFor is StandardPolicies with the oracle matched to the
// farm's service rate and response-time target, making it SLA-optimal
// (the paper's "optimal policy ... does not produce any SLA violations").
func StandardPoliciesFor(cfg FarmConfig, rate RateFunc) []Policy {
	return policy.StandardSetFor(cfg, rate)
}

// Workload profiles for the policy farm.
var (
	// ConstantRate is a flat arrival-rate profile.
	ConstantRate = workload.ConstantRate
	// DiurnalRate is a daily-cycle profile.
	DiurnalRate = workload.DiurnalRate
	// SpikeRate overlays a flash crowd on a base rate.
	SpikeRate = workload.SpikeRate
	// BurstRate overlays a spike train (repeated flash crowds) on a base
	// rate — the bursty profile whose recovery gaps defeat reactive
	// provisioning.
	BurstRate = workload.BurstRate
	// TrendRate grows linearly.
	TrendRate = workload.TrendRate
	// ComposeRates sums several profiles.
	ComposeRates = workload.Compose
)

// WorkloadProfile builds a named arrival-rate profile (see
// WorkloadProfileNames) scaled to the given horizon: the farm idles at
// base req/s and the profile adds up to peak req/s on top.
func WorkloadProfile(name string, base, peak float64, horizon Seconds) (RateFunc, error) {
	return workload.Profile(name, base, peak, horizon)
}

// WorkloadProfileNames lists the profiles WorkloadProfile accepts:
// constant, diurnal, trend, spike and burst.
func WorkloadProfileNames() []string { return workload.ProfileNames() }

// HomogeneousModel is the §4 analytic model (eqs. 6-13).
type HomogeneousModel = analytic.Model

// PaperExample returns the §4 worked example whose E_ref/E_opt is 2.25.
func PaperExample() HomogeneousModel { return analytic.PaperExample() }

// Experiment reproduction.
type (
	// ExperimentOptions tunes a reproduction run (seed, interval count,
	// cluster-size sweep).
	ExperimentOptions = experiments.Options
	// ClusterRun is the raw outcome of one (size, band) experiment.
	ClusterRun = experiments.ClusterRun
)

// DefaultExperimentOptions returns the paper's parameters (seed 2014,
// 40 intervals, sizes 10^2/10^3/10^4).
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// ExperimentNames lists the reproducible tables/figures/ablations.
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment regenerates one table or figure by name, writing the
// report to w. Valid names come from ExperimentNames.
func RunExperiment(name string, w io.Writer, opt ExperimentOptions) error {
	return experiments.Run(name, w, opt)
}

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(w io.Writer, opt ExperimentOptions) error {
	return experiments.RunAll(w, opt)
}

// RunClusterExperiment runs one (size, band) cluster simulation with the
// paper's defaults and returns the raw measurements.
func RunClusterExperiment(size int, band Band, seed uint64, intervals int) (ClusterRun, error) {
	return experiments.RunCluster(size, band, seed, intervals, nil)
}

// Decision tracing and phase timing. A Tracer attached to a
// ClusterConfig or ClusterFarmConfig receives every balance decision,
// admission, failure/repair and dispatch as a structured event plus
// per-interval phase timings. Tracing is strictly observational: it
// consumes no random numbers and changes no simulated output (runs are
// byte-identical with and without a tracer), and a nil Tracer costs a
// single branch per hook site.
type (
	// Tracer receives decision events and phase timings; implementations
	// must be safe for concurrent use and must not feed back into the
	// simulation.
	Tracer = trace.Tracer
	// TraceEvent is one structured decision event.
	TraceEvent = trace.Event
	// TraceEventKind discriminates decision events (report, move, wake,
	// sleep, admit, fail, repair, dispatch).
	TraceEventKind = trace.Kind
	// TraceRecorder aggregates phase-latency histograms and per-kind
	// event counts; its Summary renders ealb-sim's exit report.
	TraceRecorder = trace.Recorder
	// TraceWriter streams events and phase timings as NDJSON.
	TraceWriter = trace.Writer
)

// NewTraceRecorder returns an empty aggregating tracer.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NewTraceWriter returns a tracer writing NDJSON to w; call Flush
// before closing w.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// MultiTracer composes tracers: every event and timing goes to each
// non-nil tracer in order. All-nil input collapses to nil (tracing
// disabled).
func MultiTracer(ts ...Tracer) Tracer { return trace.Multi(ts...) }

// Simulation engine and scenario service.
type (
	// Engine is a worker pool executing simulation sweeps and scenarios.
	// Sweeps dispatched on an Engine are bit-identical to serial runs:
	// every job derives its own random streams from its seed and results
	// land in order-preserving slots.
	Engine = engine.Pool
	// EngineStats is a snapshot of an engine's run/energy counters.
	EngineStats = engine.Stats
	// Scenario is a JSON-friendly description of one simulation request:
	// a cluster protocol run or a policy-farm comparison driven by a
	// named workload profile. The zero value selects the paper's §5
	// defaults; a nil Seed means "use the default" while SeedOf(0) runs
	// seed 0.
	Scenario = engine.Scenario
	// ScenarioResult is the outcome of one executed scenario.
	ScenarioResult = engine.Result
	// SweepSpec is the multi-axis scenario request: any sweep axis
	// (seeds, sizes, bands, sleeps, profiles, server counts) may be a
	// list plus a replications count, and (*Engine).RunSweep expands the
	// cross-product. A scalar Scenario body is a one-element sweep.
	SweepSpec = engine.SweepSpec
	// SweepResult is a sweep's outcome: per-cell results in expansion
	// order plus per-parameter-combination aggregates.
	SweepResult = engine.SweepResult
	// SweepAggregate summarizes one parameter combination across its
	// seeds and replications (mean/min/max/stddev of energy, savings and
	// SLA violations).
	SweepAggregate = engine.Aggregate
)

// SeedOf returns a scenario seed holding v, distinguishing an explicit
// seed 0 from an absent field.
func SeedOf(v uint64) *uint64 { return engine.SeedOf(v) }

// Scenario kinds.
const (
	// ScenarioCluster runs the §4-§5 leader protocol on one cluster.
	ScenarioCluster = engine.KindCluster
	// ScenarioPolicy runs the §3 policy line-up on a server farm.
	ScenarioPolicy = engine.KindPolicy
	// ScenarioFarm runs the federated multi-cluster ecosystem behind a
	// front-end dispatcher.
	ScenarioFarm = engine.KindFarm
)

// NewEngine returns an engine running at most workers simulations
// concurrently; workers <= 0 selects one worker per available CPU.
func NewEngine(workers int) *Engine { return engine.NewPool(workers) }

// NewScenarioHandler returns the HTTP handler of the scenario service
// (the API served by cmd/ealb-serve) backed by the given engine, for
// embedding in a larger server.
func NewScenarioHandler(e *Engine) http.Handler { return serve.New(e).Handler() }
