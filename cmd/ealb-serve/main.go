// Command ealb-serve runs the HTTP scenario service: an ealb simulation
// engine behind a JSON API.
//
// Usage:
//
//	ealb-serve                    # listen on :8080, one worker per CPU
//	ealb-serve -addr :9000 -workers 4
//
// Submit a scenario and fetch its result:
//
//	curl -s -X POST localhost:8080/v1/runs?wait=1 \
//	  -d '{"kind":"cluster","size":100,"band":"low","seed":2014,"intervals":40}'
//	curl -s localhost:8080/v1/runs
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -s localhost:8080/v1/runs/run-000001/intervals
//	curl -s localhost:8080/metrics
//
// Policy scenarios select a workload profile (constant, diurnal, trend,
// spike, burst):
//
//	curl -s -X POST localhost:8080/v1/runs?wait=1 \
//	  -d '{"kind":"policy","profile":"burst","base_rate":1000,"peak_rate":5000}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"ealb/internal/engine"
	"ealb/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "engine worker count (0 = one per CPU)")
	)
	flag.Parse()

	pool := engine.NewPool(*workers)
	srv := serve.New(pool)
	fmt.Printf("ealb-serve listening on %s (%d engine workers)\n", *addr, pool.Workers())
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
