// Command ealb-serve runs the HTTP scenario service: an ealb simulation
// engine behind a JSON API.
//
// Usage:
//
//	ealb-serve                    # listen on :8080, one worker per CPU
//	ealb-serve -addr :9000 -workers 4 -drain 30s
//	ealb-serve -store-dir /var/lib/ealb   # durable run store; resumes interrupted runs on start
//	ealb-serve -tenant-quota 4    # cap concurrent runs per X-Tenant (0 = unlimited)
//	ealb-serve -pprof             # also expose /debug/pprof/ profiling handlers
//	ealb-serve -log-level debug   # per-request logs (JSON on stderr)
//
// Submit a scenario and fetch its result:
//
//	curl -s -X POST localhost:8080/v1/runs?wait=1 \
//	  -d '{"kind":"cluster","size":100,"band":"low","seed":2014,"intervals":40}'
//	curl -s localhost:8080/v1/runs
//	curl -s 'localhost:8080/v1/runs?status=done&limit=10'
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -s localhost:8080/v1/runs/run-000001/intervals   # tails live runs
//	curl -s localhost:8080/v1/runs/run-000001/trace       # decision events ("trace":true runs)
//	curl -s -X DELETE localhost:8080/v1/runs/run-000001   # cancel
//	curl -s localhost:8080/metrics
//
// Sweep requests give lists for any axis and run the whole cross-product
// in one request, returning per-cell results plus aggregates:
//
//	curl -s -X POST localhost:8080/v1/runs?wait=1 \
//	  -d '{"sizes":[100,1000],"seeds":[1,2,3],"intervals":40}'
//
// Policy scenarios select a workload profile (constant, diurnal, trend,
// spike, burst):
//
//	curl -s -X POST localhost:8080/v1/runs?wait=1 \
//	  -d '{"kind":"policy","profiles":["burst","diurnal"],"base_rate":1000,"peak_rate":5000}'
//
// Without -store-dir, runs live in process memory and die with it. With
// -store-dir, every run — record, cell checkpoints, interval and trace
// streams — is persisted as NDJSON under the directory, run IDs stay
// unique across restarts, and on startup the service resumes runs that
// were queued or running when the previous process died, finishing them
// byte-identical to an uninterrupted run. Replicas may share one store
// directory: a lease keeps two processes from executing the same run.
// POST /v1/runs additionally honours an Idempotency-Key header (replays
// answer with the original run) and, with -tenant-quota, caps each
// X-Tenant's concurrently active runs.
//
// The service logs structured JSON lines to stderr (run lifecycle at
// info, per-request logs at debug). On SIGINT/SIGTERM the server stops
// accepting requests and drains: in-flight simulations get -drain to
// finish before being cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ealb/internal/engine"
	"ealb/internal/serve"
	"ealb/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "engine worker count (0 = one per CPU)")
		drain       = flag.Duration("drain", 30*time.Second, "how long to let in-flight runs finish on shutdown before cancelling them")
		storeDir    = flag.String("store-dir", "", "durable run store directory (empty = in-memory, lost on exit)")
		owner       = flag.String("owner", "", "lease owner identity for a shared store (default: host name)")
		leaseTTL    = flag.Duration("lease", 30*time.Second, "run lease time-to-live in a shared store")
		tenantQuota = flag.Int("tenant-quota", 0, "max concurrently active runs per X-Tenant (0 = unlimited)")
		withPprof   = flag.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug adds per-request logs)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ealb-serve: invalid -log-level %q (want debug, info, warn or error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	opts := serve.Options{Owner: *owner, LeaseTTL: *leaseTTL, TenantQuota: *tenantQuota}
	if opts.Owner == "" {
		if host, err := os.Hostname(); err == nil {
			opts.Owner = host
		}
	}
	if *storeDir != "" {
		disk, err := store.OpenDisk(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ealb-serve: opening -store-dir: %v\n", err)
			os.Exit(1)
		}
		defer disk.Close()
		opts.Store = disk
	}

	pool := engine.NewPool(*workers)
	svc := serve.NewWith(pool, opts)
	svc.SetLogger(logger)
	if err := svc.Recover(context.Background()); err != nil {
		logger.Error("recovering runs from store", "error", err)
		os.Exit(1)
	}

	handler := svc.Handler()
	if *withPprof {
		// The profiling handlers are registered explicitly (not via the
		// package's DefaultServeMux side effect) so they exist only when
		// asked for, on the service's own mux.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", pool.Workers(), "pprof", *withPprof)

	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("draining", "grace", *drain)
	grace, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(grace); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := svc.Shutdown(grace); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("cancelled in-flight runs after drain timeout", "error", err)
	}
	logger.Info("stopped")
}
