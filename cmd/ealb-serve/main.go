// Command ealb-serve runs the HTTP scenario service: an ealb simulation
// engine behind a JSON API.
//
// Usage:
//
//	ealb-serve                    # listen on :8080, one worker per CPU
//	ealb-serve -addr :9000 -workers 4 -drain 30s
//
// Submit a scenario and fetch its result:
//
//	curl -s -X POST localhost:8080/v1/runs?wait=1 \
//	  -d '{"kind":"cluster","size":100,"band":"low","seed":2014,"intervals":40}'
//	curl -s localhost:8080/v1/runs
//	curl -s 'localhost:8080/v1/runs?status=done&limit=10'
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -s localhost:8080/v1/runs/run-000001/intervals   # tails live runs
//	curl -s -X DELETE localhost:8080/v1/runs/run-000001   # cancel
//	curl -s localhost:8080/metrics
//
// Sweep requests give lists for any axis and run the whole cross-product
// in one request, returning per-cell results plus aggregates:
//
//	curl -s -X POST localhost:8080/v1/runs?wait=1 \
//	  -d '{"sizes":[100,1000],"seeds":[1,2,3],"intervals":40}'
//
// Policy scenarios select a workload profile (constant, diurnal, trend,
// spike, burst):
//
//	curl -s -X POST localhost:8080/v1/runs?wait=1 \
//	  -d '{"kind":"policy","profiles":["burst","diurnal"],"base_rate":1000,"peak_rate":5000}'
//
// On SIGINT/SIGTERM the server stops accepting requests and drains:
// in-flight simulations get -drain to finish before being cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ealb/internal/engine"
	"ealb/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "engine worker count (0 = one per CPU)")
		drain   = flag.Duration("drain", 30*time.Second, "how long to let in-flight runs finish on shutdown before cancelling them")
	)
	flag.Parse()

	pool := engine.NewPool(*workers)
	svc := serve.New(pool)
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("ealb-serve listening on %s (%d engine workers)\n", *addr, pool.Workers())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Printf("ealb-serve draining (up to %v)\n", *drain)
	grace, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(grace); err != nil {
		log.Printf("ealb-serve: http shutdown: %v", err)
	}
	if err := svc.Shutdown(grace); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("ealb-serve: cancelled in-flight runs after drain timeout: %v", err)
	}
	fmt.Println("ealb-serve stopped")
}
