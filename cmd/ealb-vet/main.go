// Command ealb-vet is the project's semantic vet tool: it runs the
// internal/lint analyzer suite (detrand, stablesort, hotalloc,
// tracenil, jsontag, hotcall, planpure, lockguard) over fully
// type-checked packages through the standard `go vet -vettool=`
// protocol:
//
//	go build -o bin/ealb-vet ./cmd/ealb-vet
//	go vet -vettool=$(pwd)/bin/ealb-vet ./...
//
// Invoked with package patterns instead of a vet config file, it
// re-executes `go vet -vettool=<itself>` with those patterns, so
// `bin/ealb-vet ./...` alone also works. `ealb-vet -list` prints each
// analyzer's name and contract — CI runs it first so the build log
// self-documents which rules gated the run. `ealb-vet -fix` applies the
// suggested fixes of mechanical findings in place; with -diff it
// previews them and exits 2 when the tree is not fix-clean (the CI
// dry-run).
//
// The vet protocol is implemented directly on the standard library
// (this module deliberately has no external dependencies): the tool
// answers the `-V=full` build-ID handshake and the `-flags` query, and
// for each package receives a JSON config file listing sources, the
// import map, and compiler export-data files, against which the package
// is parsed and type-checked before analysis.
//
// Facts. Each run of a module package also serializes that package's
// fact table (internal/lint/facts.go: Allocates, Mutates, Nondet, per
// declared function) to the vetx output file the go command supplies,
// and reads its dependencies' tables back through the config's
// PackageVetx map. That is how hotcall and planpure see through
// package boundaries: the driver schedules dependencies first, so by
// the time a package is analyzed every callee's facts are on disk.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"ealb/internal/lint"
)

// vetConfig mirrors cmd/go's per-package vet configuration (the JSON
// written next to each compiled package when a -vettool is set). Only
// the fields this tool consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func main() {
	os.Exit(run())
}

func run() int {
	flags := flag.NewFlagSet("ealb-vet", flag.ExitOnError)
	var (
		versionFlag = flags.String("V", "", "print version and exit (vet protocol handshake)")
		flagsFlag   = flags.Bool("flags", false, "print analyzer flags as JSON and exit (vet protocol)")
		listFlag    = flags.Bool("list", false, "print each analyzer's name and doc string, then exit")
		jsonFlag    = flags.Bool("json", false, "emit diagnostics as JSON instead of plain text")
		fixFlag     = flags.Bool("fix", false, "apply suggested fixes to the module in place")
		diffFlag    = flags.Bool("diff", false, "with -fix: print the fixes as a diff instead of applying; exit 2 if any")
	)
	flags.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ealb-vet [-list] [-json] [-fix [-diff] [moduledir]] [packages | vet.cfg]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(os.Args[1:]); err != nil {
		return 2
	}

	switch {
	case *versionFlag != "":
		return printVersion()
	case *flagsFlag:
		// The go command queries the tool's flags before first use; the
		// one flag it may forward is -json (from `go vet -json`).
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
		return 0
	case *listFlag:
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	case *fixFlag:
		return runFix(flags.Args(), *diffFlag)
	}

	args := flags.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0], *jsonFlag)
	}
	if len(args) == 0 {
		flags.Usage()
		return 2
	}
	return reexecGoVet(args)
}

// printVersion answers the -V=full handshake. cmd/go requires the line
// `<name> version <id...>` and uses it as the tool's build-cache key,
// so the id embeds a content hash of this executable: rebuilding the
// tool invalidates prior vet results.
func printVersion() int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("ealb-vet version ealb-%s\n", id)
	return 0
}

// reexecGoVet turns `ealb-vet ./...` into `go vet -vettool=<self> ./...`
// so the toolchain does package loading and export-data plumbing.
func reexecGoVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		goTool = "go"
	}
	cmd := exec.Command(goTool, append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	return 0
}

// runFix analyzes every package of the enclosing module from source and
// applies (or, with -diff, previews) the suggested fixes attached to
// the findings. Exit status: 0 fix-clean or fixes applied, 1 error, 2
// diff mode found pending fixes — CI runs `ealb-vet -fix -diff .` as
// the fix-clean gate.
func runFix(args []string, diffOnly bool) int {
	start := "."
	if len(args) > 0 {
		start = args[0]
	}
	root, modPath, err := findModule(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	loader := lint.NewLoader(modPath, root)
	var diags []lint.Diagnostic
	for _, dir := range packageDirs(root) {
		rel, _ := filepath.Rel(root, dir)
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(path, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
			return 1
		}
		ds, err := lint.Run(pkg, lint.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
			return 1
		}
		diags = append(diags, ds...)
	}

	byFile := lint.CollectFixes(loader.Fset, diags)
	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)
	dirty := false
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
			return 1
		}
		fixed, err := lint.ApplyEdits(src, byFile[name])
		if err != nil {
			fmt.Fprintf(os.Stderr, "ealb-vet: %s: %v\n", name, err)
			return 1
		}
		if string(fixed) == string(src) {
			continue
		}
		dirty = true
		if diffOnly {
			fmt.Print(lint.Diff(name, src, fixed))
			continue
		}
		if err := os.WriteFile(name, fixed, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
			return 1
		}
		fmt.Printf("ealb-vet: fixed %s\n", name)
	}
	if diffOnly && dirty {
		return 2
	}
	return 0
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// packageDirs lists the module's package directories, skipping
// testdata (fixture findings are intentional), bin, and dot-dirs.
func packageDirs(root string) []string {
	var dirs []string
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "bin" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs
}

// unitcheck analyzes one package as described by a vet config file and
// reports diagnostics — the per-package half of the vet protocol.
func unitcheck(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ealb-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Out-of-module packages (std, would-be dependencies) carry no ealb
	// facts: write the empty facts file the driver's bookkeeping expects
	// and stop.
	if !inModule(cfg.ImportPath) {
		if err := writeVetx(cfg.VetxOutput, nil); err != nil {
			fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
			return 1
		}
		return 0
	}

	// Module packages always get their facts computed and serialized —
	// even on VetxOnly runs, which exist precisely so that a dependency's
	// facts are on disk before its importers are analyzed.
	diags, facts, err := analyze(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput, nil)
			return 0
		}
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput, facts); err != nil {
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	if len(diags.byAnalyzer) == 0 {
		return 0
	}
	if asJSON {
		out := map[string]map[string][]jsonDiag{cfg.ImportPath: diags.byAnalyzer}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return 0
	}
	for _, line := range diags.plain {
		fmt.Fprintln(os.Stderr, line)
	}
	return 2 // the conventional "diagnostics found" vet exit status
}

// inModule reports whether the import path belongs to this module —
// the driver also schedules std/dependency packages, which this suite
// has no business analyzing.
func inModule(path string) bool {
	return path == "ealb" || strings.HasPrefix(path, "ealb/")
}

// writeVetx serializes a fact table to the driver-designated vetx file.
// A nil table writes an empty file — the "no facts" wire value
// DecodeFacts round-trips to nil.
func writeVetx(path string, facts *lint.PackageFacts) error {
	if path == "" {
		return nil
	}
	var data []byte
	if facts != nil {
		var err error
		if data, err = lint.EncodeFacts(facts); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o666)
}

// vetxFactSource reads dependency fact tables lazily from the files the
// go command lists in PackageVetx, caching per path. Unreadable or
// absent tables resolve to nil: the analyzers then simply know nothing
// about that package's functions, which is the safe direction (facts
// only ever add findings).
func vetxFactSource(cfg *vetConfig) lint.FactSource {
	cache := map[string]*lint.PackageFacts{}
	return func(path string) *lint.PackageFacts {
		if pf, ok := cache[path]; ok {
			return pf
		}
		var pf *lint.PackageFacts
		if file, ok := cfg.PackageVetx[path]; ok {
			if data, err := os.ReadFile(file); err == nil {
				pf, _ = lint.DecodeFacts(data)
			}
		}
		cache[path] = pf
		return pf
	}
}

type jsonDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

type diagSet struct {
	plain      []string
	byAnalyzer map[string][]jsonDiag
}

// analyze parses and type-checks the configured package against its
// compiler export data, computes its fact table, and — unless this is a
// facts-only dependency run — applies the analyzer suite.
func analyze(cfg *vetConfig) (*diagSet, *lint.PackageFacts, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	conf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, runtime.GOARCH)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	imports := vetxFactSource(cfg)
	facts := lint.BuildFacts(cfg.ImportPath, fset, files, pkg, info, imports)
	out := &diagSet{byAnalyzer: map[string][]jsonDiag{}}
	if cfg.VetxOnly {
		return out, facts, nil
	}

	diags, err := lint.Run(&lint.Package{
		Path: cfg.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info,
		Facts: facts, ImportFacts: imports,
	}, lint.Analyzers())
	if err != nil {
		return nil, nil, err
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		out.plain = append(out.plain, fmt.Sprintf("%s: %s", posn, d.Message))
		out.byAnalyzer[d.Analyzer] = append(out.byAnalyzer[d.Analyzer], jsonDiag{Posn: posn.String(), Message: d.Message})
	}
	return out, facts, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
