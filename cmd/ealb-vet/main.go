// Command ealb-vet is the project's semantic vet tool: it runs the
// internal/lint analyzer suite (detrand, stablesort, hotalloc,
// tracenil, jsontag) over fully type-checked packages through the
// standard `go vet -vettool=` protocol:
//
//	go build -o bin/ealb-vet ./cmd/ealb-vet
//	go vet -vettool=$(pwd)/bin/ealb-vet ./...
//
// Invoked with package patterns instead of a vet config file, it
// re-executes `go vet -vettool=<itself>` with those patterns, so
// `bin/ealb-vet ./...` alone also works. `ealb-vet -list` prints each
// analyzer's name and contract — CI runs it first so the build log
// self-documents which rules gated the run.
//
// The vet protocol is implemented directly on the standard library
// (this module deliberately has no external dependencies): the tool
// answers the `-V=full` build-ID handshake and the `-flags` query, and
// for each package receives a JSON config file listing sources, the
// import map, and compiler export-data files, against which the package
// is parsed and type-checked before analysis.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"ealb/internal/lint"
)

// vetConfig mirrors cmd/go's per-package vet configuration (the JSON
// written next to each compiled package when a -vettool is set). Only
// the fields this tool consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func main() {
	os.Exit(run())
}

func run() int {
	flags := flag.NewFlagSet("ealb-vet", flag.ExitOnError)
	var (
		versionFlag = flags.String("V", "", "print version and exit (vet protocol handshake)")
		flagsFlag   = flags.Bool("flags", false, "print analyzer flags as JSON and exit (vet protocol)")
		listFlag    = flags.Bool("list", false, "print each analyzer's name and doc string, then exit")
		jsonFlag    = flags.Bool("json", false, "emit diagnostics as JSON instead of plain text")
	)
	flags.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ealb-vet [-list] [-json] [packages | vet.cfg]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(os.Args[1:]); err != nil {
		return 2
	}

	switch {
	case *versionFlag != "":
		return printVersion()
	case *flagsFlag:
		// The go command queries the tool's flags before first use; the
		// one flag it may forward is -json (from `go vet -json`).
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
		return 0
	case *listFlag:
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	args := flags.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0], *jsonFlag)
	}
	if len(args) == 0 {
		flags.Usage()
		return 2
	}
	return reexecGoVet(args)
}

// printVersion answers the -V=full handshake. cmd/go requires the line
// `<name> version <id...>` and uses it as the tool's build-cache key,
// so the id embeds a content hash of this executable: rebuilding the
// tool invalidates prior vet results.
func printVersion() int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("ealb-vet version ealb-%s\n", id)
	return 0
}

// reexecGoVet turns `ealb-vet ./...` into `go vet -vettool=<self> ./...`
// so the toolchain does package loading and export-data plumbing.
func reexecGoVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		goTool = "go"
	}
	cmd := exec.Command(goTool, append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	return 0
}

// unitcheck analyzes one package as described by a vet config file and
// reports diagnostics — the per-package half of the vet protocol.
func unitcheck(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ealb-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The vet driver asks for facts from every dependency; this suite
	// derives everything from the package itself, so dependency runs
	// only need to produce their (empty) facts file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || !inModule(cfg.ImportPath) {
		return 0
	}

	diags, err := analyze(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ealb-vet: %v\n", err)
		return 1
	}
	if len(diags.byAnalyzer) == 0 {
		return 0
	}
	if asJSON {
		out := map[string]map[string][]jsonDiag{cfg.ImportPath: diags.byAnalyzer}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return 0
	}
	for _, line := range diags.plain {
		fmt.Fprintln(os.Stderr, line)
	}
	return 2 // the conventional "diagnostics found" vet exit status
}

// inModule reports whether the import path belongs to this module —
// the driver also schedules std/dependency packages, which this suite
// has no business analyzing.
func inModule(path string) bool {
	return path == "ealb" || strings.HasPrefix(path, "ealb/")
}

type jsonDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

type diagSet struct {
	plain      []string
	byAnalyzer map[string][]jsonDiag
}

// analyze parses and type-checks the configured package against its
// compiler export data, then applies the analyzer suite.
func analyze(cfg *vetConfig) (*diagSet, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	conf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, runtime.GOARCH)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	diags, err := lint.Run(&lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info}, lint.Analyzers())
	if err != nil {
		return nil, err
	}
	out := &diagSet{byAnalyzer: map[string][]jsonDiag{}}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		out.plain = append(out.plain, fmt.Sprintf("%s: %s", posn, d.Message))
		out.byAnalyzer[d.Analyzer] = append(out.byAnalyzer[d.Analyzer], jsonDiag{Posn: posn.String(), Message: d.Message})
	}
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
