// Command ealb-policy compares the §3 dynamic capacity-management
// policies on a simulated server farm.
//
// Usage:
//
//	ealb-policy -workload spiky -servers 100 -horizon 7200
//	ealb-policy -workload diurnal -setup 260
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"ealb"
)

func main() {
	var (
		wl      = flag.String("workload", "spiky", "workload shape: steady, diurnal, spiky, trend")
		servers = flag.Int("servers", 100, "farm size")
		horizon = flag.Float64("horizon", 7200, "simulated seconds")
		setup   = flag.Float64("setup", 260, "server setup time in seconds (paper cites up to 260s)")
		seed    = flag.Uint64("seed", 1, "arrival sampling seed")
	)
	flag.Parse()

	// Ctrl-C abandons the simulation at its next interval/slot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := ealb.DefaultFarmConfig()
	cfg.Servers = *servers
	cfg.Horizon = ealb.Seconds(*horizon)
	cfg.SetupTime = ealb.Seconds(*setup)
	cfg.Seed = *seed

	var rate ealb.RateFunc
	switch *wl {
	case "steady":
		rate = ealb.ConstantRate(3000)
	case "diurnal":
		rate = ealb.DiurnalRate(1000, 4000, cfg.Horizon)
	case "spiky":
		rate = ealb.ComposeRates(
			ealb.ConstantRate(1000),
			ealb.SpikeRate(0, 5000, cfg.Horizon/3, cfg.Horizon/12),
			ealb.SpikeRate(0, 3000, 2*cfg.Horizon/3, cfg.Horizon/20),
		)
	case "trend":
		rate = ealb.TrendRate(500, 0.5)
	default:
		fmt.Fprintf(os.Stderr, "ealb-policy: unknown workload %q\n", *wl)
		os.Exit(2)
	}

	results, err := ealb.ComparePolicies(ctx, cfg, ealb.StandardPoliciesFor(cfg, rate), rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ealb-policy:", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s servers=%d horizon=%v setup=%v\n\n", *wl, *servers, cfg.Horizon, cfg.SetupTime)
	fmt.Printf("%-20s %-12s %-10s %-9s %-11s %-10s\n",
		"policy", "energy(kWh)", "drop-rate", "rt-viol", "mean-rt(ms)", "avg-active")
	for _, r := range results {
		fmt.Printf("%-20s %-12.2f %-10.4f %-9d %-11.1f %-10.1f\n",
			r.Policy, r.Energy.KWh(), r.DropRate(), r.RTViolationSlots, r.MeanResponse*1000, r.AvgActive)
	}
}
