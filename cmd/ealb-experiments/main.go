// Command ealb-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	ealb-experiments -run figure2            # one experiment
//	ealb-experiments -run all                # everything
//	ealb-experiments -list                   # available experiments
//	ealb-experiments -run table2 -sizes 100,1000 -seed 7 -intervals 40
//	ealb-experiments -run figure2 -parallel 0   # sweep panels on all CPUs
//
// The full paper-scale sweep (cluster size 10^4) takes tens of seconds;
// use -sizes to trim it during development, or -parallel to spread the
// panels over the simulation engine's worker pool (the output is
// bit-identical to a serial run either way).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ealb"
	"ealb/internal/experiments"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment to run, or 'all'")
		list      = flag.Bool("list", false, "list available experiments and exit")
		seed      = flag.Uint64("seed", ealb.DefaultExperimentOptions().Seed, "simulation seed")
		intervals = flag.Int("intervals", ealb.DefaultExperimentOptions().Intervals, "reallocation intervals per run")
		sizes     = flag.String("sizes", "", "comma-separated cluster sizes (default: 100,1000,10000)")
		csvDir    = flag.String("csvdir", "", "also write per-panel Figure 3 CSVs into this directory")
		parallel  = flag.Int("parallel", 1, "sweep workers: 1 = serial, 0 = one per CPU")
	)
	flag.Parse()

	if *list {
		for _, n := range ealb.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}

	opt := ealb.DefaultExperimentOptions()
	opt.Seed = *seed
	opt.Intervals = *intervals
	opt.Parallel = *parallel
	if *parallel == 0 {
		opt.Parallel = -1 // flag 0 = one worker per CPU
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ealb-experiments:", err)
			os.Exit(2)
		}
		opt.Sizes = parsed
	}

	var err error
	if *run == "all" {
		err = ealb.RunAllExperiments(os.Stdout, opt)
	} else {
		err = ealb.RunExperiment(*run, os.Stdout, opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ealb-experiments:", err)
		os.Exit(1)
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, opt); err != nil {
			fmt.Fprintln(os.Stderr, "ealb-experiments:", err)
			os.Exit(1)
		}
	}
}

// writeCSVs exports the per-interval metrics of every (size, band) panel
// for external plotting of Figure 3.
func writeCSVs(dir string, opt ealb.ExperimentOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, size := range opt.Sizes {
		for _, band := range experiments.PaperBands {
			run, err := experiments.RunCluster(size, band, opt.Seed, opt.Intervals, nil)
			if err != nil {
				return err
			}
			name := fmt.Sprintf("figure3_n%d_load%.0f.csv", size, band.Mean()*100)
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			if err := experiments.WriteRatioCSV(f, run); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "wrote", filepath.Join(dir, name))
		}
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 1 {
			return nil, fmt.Errorf("invalid cluster size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
