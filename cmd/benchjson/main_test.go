package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: ealb/internal/cluster
cpu: AMD EPYC 7B13
BenchmarkClusterIntervals/size=100-8         	       1	     88123 ns/op	   20480 B/op	      20 allocs/op
BenchmarkClusterIntervals/size=1000-8        	       1	    912345 ns/op	  204800 B/op	     120 allocs/op
PASS
ok  	ealb/internal/cluster	1.234s
pkg: ealb/internal/engine
BenchmarkSweep-8   	       2	  51234567 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkClusterIntervals/size=100-8 \t 1\t 88123 ns/op\t 20480 B/op\t 20 allocs/op")
	if !ok {
		t.Fatal("result line rejected")
	}
	if b.Name != "BenchmarkClusterIntervals/size=100-8" || b.Iterations != 1 || b.NsPerOp != 88123 {
		t.Errorf("parsed %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 20480 || b.AllocsPerOp == nil || *b.AllocsPerOp != 20 {
		t.Errorf("memory stats lost: %+v", b)
	}
	if _, ok := parseBench("BenchmarkBroken-8  abc  12 ns/op"); ok {
		t.Error("junk iteration count accepted")
	}
	// Without -benchmem there are no B/op fields; the line still counts.
	b, ok = parseBench("BenchmarkLean-8   100   321 ns/op")
	if !ok || b.BytesPerOp != nil {
		t.Errorf("plain line parsed as %+v ok=%v", b, ok)
	}
}

func TestRunEmitsArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run(strings.NewReader(sampleBenchOutput), 6, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != "ealb-bench/v1" || art.PR != 6 {
		t.Errorf("header = %+v", art)
	}
	if art.GOOS != "linux" || art.CPU != "AMD EPYC 7B13" {
		t.Errorf("environment lost: %+v", art)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.Benchmarks))
	}
	if art.Benchmarks[0].Pkg != "ealb/internal/cluster" || art.Benchmarks[2].Pkg != "ealb/internal/engine" {
		t.Errorf("pkg attribution wrong: %q, %q", art.Benchmarks[0].Pkg, art.Benchmarks[2].Pkg)
	}
	if art.Benchmarks[2].BytesPerOp != nil {
		t.Error("engine bench (no -benchmem fields) grew memory stats")
	}

	// Empty input is an error, not an empty artifact.
	if err := run(strings.NewReader("PASS\n"), 6, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("benchmark-free input accepted")
	}
}
