// Command benchjson converts `go test -bench` text output into the
// machine-readable benchmark artifact CI uploads next to the raw log
// (BENCH_<pr>.json). The schema is stable so successive PRs' artifacts
// can be concatenated into a perf trajectory:
//
//	{
//	  "schema": "ealb-bench/v1",
//	  "pr": 6,
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "benchmarks": [
//	    {"pkg": "ealb/internal/cluster",
//	     "name": "BenchmarkClusterIntervals/size=100-8",
//	     "ns_per_op": 88123.0, "bytes_per_op": 20480, "allocs_per_op": 20}
//	  ]
//	}
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x ./... | benchjson -pr 6 -o BENCH_6.json
//
// Lines that are not benchmark results (pass/fail summaries, pkg
// headers) parameterize or skip; ns/op is always present, B/op and
// allocs/op when -benchmem was given.
//
// Compare mode diffs two artifacts instead of converting (compare.go):
//
//	benchjson -baseline BENCH_6.json BENCH_8.json
//
// prints per-benchmark ns/op and allocs/op deltas (matched by package and
// name, GOMAXPROCS suffix stripped) and exits nonzero when any benchmark
// regressed past -threshold (default +25%). CI runs it as an advisory
// step against the previous PR's artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	// Iterations is b.N — 1 under CI's -benchtime 1x smoke.
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
}

type artifact struct {
	Schema     string      `json:"schema"`
	PR         int         `json:"pr,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	var (
		pr        = flag.Int("pr", 0, "PR number recorded in the artifact (names BENCH_<pr>.json)")
		out       = flag.String("o", "", "output file (default stdout)")
		baseline  = flag.Bool("baseline", false, "compare two artifacts: benchjson -baseline old.json new.json")
		threshold = flag.Float64("threshold", 0.25, "regression threshold for -baseline (0.25 = +25%)")
	)
	flag.Parse()
	if *baseline {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -baseline needs exactly two artifacts: old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, *pr, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, pr int, out string) error {
	art := artifact{Schema: "ealb-bench/v1", PR: pr, Benchmarks: []benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			art.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			art.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			art.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Pkg = pkg
				art.Benchmarks = append(art.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(art.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found on input")
	}

	raw, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if out == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(out, raw, 0o644)
}

// parseBench parses one result line: a name, the iteration count, then
// value-unit pairs (`123 ns/op`, `45 B/op`, `6 allocs/op`, `7.8 MB/s`).
func parseBench(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			n := int64(val)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(val)
			b.AllocsPerOp = &n
		case "MB/s":
			v := val
			b.MBPerSec = &v
		}
	}
	return b, b.NsPerOp > 0
}
