package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name string, art artifact) string {
	t.Helper()
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func mkBench(pkg, name string, ns float64, allocs int64) benchmark {
	return benchmark{Pkg: pkg, Name: name, Iterations: 1, NsPerOp: ns, AllocsPerOp: &allocs}
}

func TestBenchKeyStripsProcSuffix(t *testing.T) {
	a := mkBench("p", "BenchmarkX/size=100-8", 1, 0)
	b := mkBench("p", "BenchmarkX/size=100-16", 1, 0)
	if benchKey(a) != benchKey(b) {
		t.Errorf("keys differ across GOMAXPROCS suffixes: %q vs %q", benchKey(a), benchKey(b))
	}
	// The size parameter is part of the identity, not a proc suffix.
	c := mkBench("p", "BenchmarkX/size=1000-8", 1, 0)
	if benchKey(a) == benchKey(c) {
		t.Errorf("different sizes collapsed to one key %q", benchKey(a))
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", artifact{
		Schema: "ealb-bench/v1", PR: 6,
		Benchmarks: []benchmark{
			mkBench("ealb/internal/cluster", "BenchmarkA-8", 1000, 10),
			mkBench("ealb/internal/cluster", "BenchmarkB-8", 1000, 10),
			mkBench("ealb/internal/cluster", "BenchmarkGone-8", 1000, 10),
		},
	})
	newPath := writeArtifact(t, dir, "new.json", artifact{
		Schema: "ealb-bench/v1", PR: 8,
		Benchmarks: []benchmark{
			mkBench("ealb/internal/cluster", "BenchmarkA-8", 1100, 10),  // +10%: within threshold
			mkBench("ealb/internal/cluster", "BenchmarkB-8", 2000, 10),  // +100%: regression
			mkBench("ealb/internal/cluster", "BenchmarkNew-8", 500, 10), // no baseline: informational
		},
	})

	var sb strings.Builder
	err := runCompare(oldPath, newPath, 0.25, &sb)
	if err == nil {
		t.Fatal("doubled ns/op within a 25% threshold did not error")
	}
	out := sb.String()
	if !strings.Contains(out, "<< regression") {
		t.Errorf("report lacks a regression marker:\n%s", out)
	}
	if !strings.Contains(out, "(new)") || !strings.Contains(out, "(removed)") {
		t.Errorf("report lacks new/removed annotations:\n%s", out)
	}

	// A looser threshold accepts the same pair.
	sb.Reset()
	if err := runCompare(oldPath, newPath, 1.5, &sb); err != nil {
		t.Errorf("threshold 150%% still failed: %v", err)
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", artifact{
		Schema: "ealb-bench/v1",
		Benchmarks: []benchmark{
			mkBench("p", "BenchmarkAllocs-8", 1000, 100),
		},
	})
	// ns/op flat, allocs/op tripled: still a regression.
	newPath := writeArtifact(t, dir, "new.json", artifact{
		Schema: "ealb-bench/v1",
		Benchmarks: []benchmark{
			mkBench("p", "BenchmarkAllocs-8", 1000, 300),
		},
	})
	if err := runCompare(oldPath, newPath, 0.25, &strings.Builder{}); err == nil {
		t.Error("tripled allocs/op not flagged")
	}
}

func TestCompareRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := writeArtifact(t, dir, "ok.json", artifact{Schema: "ealb-bench/v1"})
	if err := runCompare(bad, ok, 0.25, &strings.Builder{}); err == nil {
		t.Error("foreign schema accepted as baseline")
	}
}
