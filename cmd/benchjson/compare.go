package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// compare implements `benchjson -baseline old.json new.json`: it matches
// the two artifacts' benchmarks by package and name, prints the ns/op and
// allocs/op deltas, and reports whether any benchmark regressed past the
// threshold (a fraction: 0.25 means +25%). CI runs this as an advisory
// step — `-benchtime 1x` smoke numbers are noisy, so the nonzero exit
// flags the PR for a human look rather than failing the build.

// procSuffix is the GOMAXPROCS suffix `go test` appends to benchmark
// names (`-8`). It varies with the runner's core count and says nothing
// about the code, so matching strips it.
var procSuffix = regexp.MustCompile(`-\d+$`)

func benchKey(b benchmark) string {
	return b.Pkg + "." + procSuffix.ReplaceAllString(b.Name, "")
}

func loadArtifact(path string) (artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return artifact{}, err
	}
	var art artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		return artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(art.Schema, "ealb-bench/") {
		return artifact{}, fmt.Errorf("%s: unknown schema %q", path, art.Schema)
	}
	return art, nil
}

// delta returns the relative change from old to new (0.25 = +25%).
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

func formatDelta(d float64) string {
	return fmt.Sprintf("%+.1f%%", d*100)
}

// compareArtifacts writes the delta table to w and returns the number of
// benchmarks whose ns/op or allocs/op regressed past threshold.
func compareArtifacts(w io.Writer, oldArt, newArt artifact, threshold float64) int {
	oldBy := make(map[string]benchmark, len(oldArt.Benchmarks))
	for _, b := range oldArt.Benchmarks {
		oldBy[benchKey(b)] = b
	}
	keys := make([]string, 0, len(newArt.Benchmarks))
	newBy := make(map[string]benchmark, len(newArt.Benchmarks))
	for _, b := range newArt.Benchmarks {
		k := benchKey(b)
		newBy[k] = b
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	fmt.Fprintf(w, "%-64s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns/op", "Δallocs")
	for _, k := range keys {
		nb := newBy[k]
		ob, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(w, "%-64s %14s %14.0f %9s %9s\n", k, "(new)", nb.NsPerOp, "-", "-")
			continue
		}
		dNs := delta(ob.NsPerOp, nb.NsPerOp)
		allocsCol := "-"
		regressed := dNs > threshold
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
			dAllocs := delta(float64(*ob.AllocsPerOp), float64(*nb.AllocsPerOp))
			allocsCol = formatDelta(dAllocs)
			regressed = regressed || dAllocs > threshold
		}
		mark := ""
		if regressed {
			mark = "  << regression"
			regressions++
		}
		fmt.Fprintf(w, "%-64s %14.0f %14.0f %9s %9s%s\n",
			k, ob.NsPerOp, nb.NsPerOp, formatDelta(dNs), allocsCol, mark)
	}
	for k := range oldBy {
		if _, ok := newBy[k]; !ok {
			fmt.Fprintf(w, "%-64s %14s\n", k, "(removed)")
		}
	}
	return regressions
}

// runCompare loads both artifacts and writes the report; the error is
// non-nil when regressions exceed the threshold so main exits nonzero.
func runCompare(oldPath, newPath string, threshold float64, w io.Writer) error {
	oldArt, err := loadArtifact(oldPath)
	if err != nil {
		return err
	}
	newArt, err := loadArtifact(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline %s (PR %d) vs %s (PR %d), threshold %+.0f%%\n",
		oldPath, oldArt.PR, newPath, newArt.PR, threshold*100)
	if n := compareArtifacts(w, oldArt, newArt, threshold); n > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", n, threshold*100)
	}
	return nil
}
