// Command ealb-sim runs a single cluster — or, with -clusters, a
// federated multi-cluster farm behind a front-end dispatcher — and
// streams per-interval statistics, suitable for piping into plotting
// tools.
//
// Usage:
//
//	ealb-sim -size 1000 -load high -intervals 40 -seed 42
//	ealb-sim -size 100 -load low -csv
//	ealb-sim -size 10000 -cpuprofile cpu.out -memprofile mem.out
//	ealb-sim -clusters 4 -size 100 -dispatch least-loaded
//	ealb-sim -clusters 8 -size 50 -dispatch energy-headroom -arrivals 10 -csv
//	ealb-sim -size 100 -mtbf 3600 -mttr 300     # stochastic server churn
//	ealb-sim -size 100 -trace out.ndjson        # decision trace + phase timing summary
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"ealb"
)

func main() {
	// All post-flag work lives in run so error paths (including a Ctrl-C
	// abandon) unwind through the deferred profile flushes — os.Exit here
	// would leave a truncated CPU profile.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ealb-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		size       = flag.Int("size", 1000, "cluster size (number of servers, per cluster when -clusters > 1)")
		load       = flag.String("load", "low", "initial load band: low (20-40%) or high (60-80%)")
		intervals  = flag.Int("intervals", 40, "reallocation intervals to simulate")
		seed       = flag.Uint64("seed", 2014, "simulation seed")
		sleep      = flag.String("sleep", "auto", "sleep policy: auto, c3, c6, never")
		mtbf       = flag.Float64("mtbf", 0, "mean time between failures per server in seconds; 0 disables churn")
		mttr       = flag.Float64("mttr", 300, "mean time to repair a failed server in seconds (used when -mtbf > 0)")
		clusters   = flag.Int("clusters", 1, "number of federated clusters; above 1 runs a farm behind a front-end dispatcher")
		dispatch   = flag.String("dispatch", "round-robin", "farm dispatch policy: round-robin, least-loaded, energy-headroom")
		arrivals   = flag.Float64("arrivals", -1, "mean new applications arriving per interval farm-wide (-1 selects the default open workload)")
		csv        = flag.Bool("csv", false, "emit CSV instead of a table")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
		tracePath  = flag.String("trace", "", "write decision events and phase timings as NDJSON to this file and print a phase-timing summary on exit")
	)
	flag.Parse()

	// Profiling hooks: the single-cluster CLI is the convenient harness
	// for capturing hot-path profiles at any size without test scaffolding
	// (`ealb-sim -size 10000 -cpuprofile cpu.out`, then `go tool pprof`).
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // flush accurate allocation stats before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ealb-sim:", err)
			}
			f.Close()
		}()
	}

	// Ctrl-C abandons the simulation at its next interval/slot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Decision tracing: NDJSON to the file, aggregate summary to stderr.
	// Attaching the tracer cannot change the simulated output — the
	// digests are byte-identical either way (the trace package contract).
	var tracer ealb.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		tw := ealb.NewTraceWriter(f)
		rec := ealb.NewTraceRecorder()
		tracer = ealb.MultiTracer(tw, rec)
		defer func() {
			if err := tw.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "ealb-sim: trace:", err)
			}
			f.Close()
			fmt.Fprint(os.Stderr, "\n"+rec.Summary())
		}()
	}

	var band ealb.Band
	switch *load {
	case "low":
		band = ealb.LowLoad()
	case "high":
		band = ealb.HighLoad()
	default:
		return fmt.Errorf("unknown load band %q (want low or high)", *load)
	}

	cfg := ealb.DefaultClusterConfig(*size, band, *seed)
	switch *sleep {
	case "auto":
		cfg.Sleep = ealb.SleepAuto
	case "c3":
		cfg.Sleep = ealb.SleepC3Only
	case "c6":
		cfg.Sleep = ealb.SleepC6Only
	case "never":
		cfg.Sleep = ealb.SleepNever
	default:
		return fmt.Errorf("unknown sleep policy %q", *sleep)
	}
	if *mtbf < 0 || *mttr <= 0 {
		return fmt.Errorf("-mtbf %v must be >= 0 and -mttr %v must be positive", *mtbf, *mttr)
	}
	if *mtbf > 0 {
		cfg.MTBF = ealb.Seconds(*mtbf)
		cfg.MTTR = ealb.Seconds(*mttr)
	}

	if *clusters < 1 {
		return fmt.Errorf("-clusters %d must be at least 1", *clusters)
	}
	if *clusters > 1 {
		return runFarm(ctx, *clusters, cfg, *dispatch, *arrivals, *intervals, *seed, *csv, tracer)
	}
	cfg.Tracer = tracer
	// Farm-only flags on a single-cluster run would be silently ignored;
	// refuse instead so the user knows the run they asked for needs
	// -clusters.
	var farmOnly []string
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dispatch" || f.Name == "arrivals" {
			farmOnly = append(farmOnly, "-"+f.Name)
		}
	})
	if len(farmOnly) > 0 {
		return fmt.Errorf("%s only apply to farm runs; add -clusters N (N > 1)", strings.Join(farmOnly, ", "))
	}

	c, err := ealb.NewCluster(cfg)
	if err != nil {
		return err
	}
	stats, err := c.RunIntervals(ctx, *intervals)
	if err != nil {
		return err
	}

	if *csv {
		fmt.Println("interval,ratio,local,incluster,migrations,sleeping,woken,sla_violations,cluster_load,interval_energy_j,avg_q_j,avg_p_j,avg_j_j")
		for _, s := range stats {
			fmt.Printf("%d,%.6f,%d,%d,%d,%d,%d,%d,%.6f,%.1f,%.2f,%.2f,%.4f\n",
				s.Index, s.Ratio, s.Decisions.Local, s.Decisions.InCluster,
				s.Migrations, s.Sleeping, s.Woken, s.SLAViolations,
				float64(s.ClusterLoad), float64(s.IntervalEnergy),
				float64(s.AvgQCost), float64(s.AvgPCost), float64(s.AvgJCost))
		}
	} else {
		fmt.Printf("%-8s %-8s %-7s %-10s %-10s %-9s %-6s %-8s\n",
			"interval", "ratio", "local", "in-cluster", "migrations", "sleeping", "SLA", "load")
		for _, s := range stats {
			fmt.Printf("%-8d %-8.3f %-7d %-10d %-10d %-9d %-6d %-8.3f\n",
				s.Index, s.Ratio, s.Decisions.Local, s.Decisions.InCluster,
				s.Migrations, s.Sleeping, s.SLAViolations, float64(s.ClusterLoad))
		}
	}

	fmt.Fprintf(os.Stderr,
		"\ntotal energy: %v  migrations: %d  wakes: %d  sleeping at end: %d  mean ratio: %.4f (std %.4f)\n",
		c.TotalEnergy(), c.Migrations(), c.Wakes(), c.SleepingCount(),
		c.Ledger().MeanRatio(), c.Ledger().StdDevRatio())
	if *mtbf > 0 {
		fmt.Fprintf(os.Stderr,
			"churn: failures: %d  repairs: %d  apps replaced: %d  apps lost: %d  failed at end: %d\n",
			c.Failures(), c.Repairs(), c.AppsReplaced(), c.AppsLost(), c.FailedCount())
	}
	return nil
}

// runFarm simulates a federated farm: clusters × size servers behind the
// chosen dispatcher, the per-interval advance phase parallelized on an
// engine sized to the machine.
func runFarm(ctx context.Context, clusters int, ccfg ealb.ClusterConfig, dispatch string, arrivals float64, intervals int, seed uint64, csv bool, tracer ealb.Tracer) error {
	policy, err := ealb.ParseDispatchPolicy(dispatch)
	if err != nil {
		return err
	}
	cfg := ealb.DefaultClusterFarmConfig(clusters, ccfg.Size, ccfg.InitialLoad, seed)
	cfg.Dispatch = policy
	cfg.Cluster = ccfg
	// The farm stamps each member cluster's index onto the shared stream.
	cfg.Tracer = tracer
	if arrivals >= 0 {
		cfg.ArrivalRate = arrivals
	}
	f, err := ealb.NewClusterFarm(cfg)
	if err != nil {
		return err
	}
	stats, err := f.RunIntervals(ctx, intervals, ealb.NewEngine(0))
	if err != nil {
		return err
	}

	if csv {
		fmt.Println("interval,mean_load,sleeping,woken,migrations,dispatched,rejected,sla_violations,overload_fraction,total_power_w,interval_energy_j")
		for _, s := range stats {
			fmt.Printf("%d,%.6f,%d,%d,%d,%d,%d,%d,%.6f,%.1f,%.1f\n",
				s.Index, float64(s.MeanLoad), s.Sleeping, s.Woken, s.Migrations,
				s.Dispatched, s.Rejected, s.SLAViolations, s.OverloadFraction,
				float64(s.TotalPower), float64(s.IntervalEnergy))
		}
	} else {
		fmt.Printf("%-8s %-8s %-9s %-10s %-10s %-9s %-6s %-10s\n",
			"interval", "load", "sleeping", "migrations", "dispatched", "rejected", "SLA", "power(W)")
		for _, s := range stats {
			fmt.Printf("%-8d %-8.3f %-9d %-10d %-10d %-9d %-6d %-10.0f\n",
				s.Index, float64(s.MeanLoad), s.Sleeping, s.Migrations,
				s.Dispatched, s.Rejected, s.SLAViolations, float64(s.TotalPower))
		}
	}

	fmt.Fprintf(os.Stderr,
		"\nfarm (%d clusters × %d servers, %s dispatch): total energy: %v  migrations: %d  wakes: %d  sleeping at end: %d  dispatched: %d  rejected: %d\n",
		clusters, ccfg.Size, policy, f.TotalEnergy(), f.Migrations(), f.Wakes(),
		f.SleepingCount(), f.Dispatched(), f.Rejected())
	if ccfg.MTBF > 0 {
		fmt.Fprintf(os.Stderr,
			"churn: failures: %d  repairs: %d  apps replaced: %d  apps lost: %d\n",
			f.Failures(), f.Repairs(), f.AppsReplaced(), f.AppsLost())
	}
	return nil
}
