// Benchmarks regenerating each table and figure of the paper. One bench
// per artifact keeps the mapping explicit even where several artifacts
// share the same underlying sweep (Figures 2/3 and Table 2 are different
// views of one simulation).
//
// The per-iteration cluster size is 10^2-10^3 so `go test -bench=.`
// terminates quickly; the full 10^4 sweep is run via
// `cmd/ealb-experiments` (see EXPERIMENTS.md for its output).
package ealb

import (
	"context"
	"io"
	"testing"

	"ealb/internal/engine"
	"ealb/internal/experiments"
	"ealb/internal/migration"
	"ealb/internal/policy"
	"ealb/internal/queueing"
	"ealb/internal/vm"
	"ealb/internal/workload"
)

// benchOptions keeps registry-driven benches at laptop scale.
func benchOptions() experiments.Options {
	return experiments.Options{Seed: experiments.DefaultSeed, Intervals: 40, Sizes: []int{100}}
}

func benchRun(b *testing.B, name string, sizes []int) {
	b.Helper()
	opt := benchOptions()
	opt.Sizes = sizes
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, io.Discard, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (server power averages 2000-2006).
func BenchmarkTable1(b *testing.B) { benchRun(b, "table1", []int{100}) }

// BenchmarkHomogeneousModel regenerates the §4 worked example
// (E_ref/E_opt = 2.25) and its sweep.
func BenchmarkHomogeneousModel(b *testing.B) { benchRun(b, "homogeneous", []int{100}) }

// BenchmarkFigure2 regenerates the regime-distribution histograms
// (before/after balancing) at laptop scale.
func BenchmarkFigure2(b *testing.B) { benchRun(b, "figure2", []int{100}) }

// BenchmarkFigure3 regenerates the in-cluster/local ratio traces.
func BenchmarkFigure3(b *testing.B) { benchRun(b, "figure3", []int{100}) }

// BenchmarkTable2 regenerates the ratio-statistics table.
func BenchmarkTable2(b *testing.B) { benchRun(b, "table2", []int{100}) }

// BenchmarkSmallClusters regenerates the 20-80 server extension from
// [19].
func BenchmarkSmallClusters(b *testing.B) { benchRun(b, "smallclusters", []int{100}) }

// BenchmarkEnergySavings regenerates the measured E_ref/E_opt table.
func BenchmarkEnergySavings(b *testing.B) { benchRun(b, "energy", []int{100}) }

// BenchmarkPolicies regenerates the §3 policy comparison across the
// three workload shapes.
func BenchmarkPolicies(b *testing.B) {
	cfg := policy.DefaultFarmConfig()
	cfg.Horizon = 3600
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rate := workload.DiurnalRate(1000, 4000, cfg.Horizon)
		if _, err := policy.Compare(context.Background(), cfg, policy.StandardSet(cfg.SetupTime, rate), rate); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSleep regenerates the sleep-state ablation (§6 rule
// vs fixed states).
func BenchmarkAblationSleep(b *testing.B) { benchRun(b, "ablation-sleep", []int{100}) }

// BenchmarkAblationDelta regenerates the optimal-region-width ablation.
func BenchmarkAblationDelta(b *testing.B) { benchRun(b, "ablation-delta", []int{100}) }

// BenchmarkAblationConsolidation regenerates the consolidation-rule
// ablation.
func BenchmarkAblationConsolidation(b *testing.B) {
	benchRun(b, "ablation-consolidation", []int{100})
}

// BenchmarkFigure1 regenerates the operating-regions illustration.
func BenchmarkFigure1(b *testing.B) { benchRun(b, "figure1", []int{100}) }

// BenchmarkDVFS regenerates the P-state selection study.
func BenchmarkDVFS(b *testing.B) { benchRun(b, "dvfs", []int{100}) }

// BenchmarkRobustness regenerates the five-seed aggregate at laptop scale.
func BenchmarkRobustness(b *testing.B) { benchRun(b, "robustness", []int{100}) }

// BenchmarkEngineSweep measures the figure2 panel sweep dispatched
// through the simulation engine, serial versus one-worker-per-CPU — the
// speedup tracked in the perf trajectory. Both paths produce
// bit-identical results (see engine's TestParallelSweepMatchesSerial);
// only the wall clock differs.
func BenchmarkEngineSweep(b *testing.B) {
	sizes := []int{100, 200, 400}
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := engine.NewPool(workers)
				if _, err := experiments.Figure2On(p, sizes, experiments.DefaultSeed, 20); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", bench(1))
	b.Run("parallel", bench(0))
}

// BenchmarkMigrationModel measures one pre-copy live-migration cost
// computation (the protocol's per-decision pricing primitive).
func BenchmarkMigrationModel(b *testing.B) {
	v, err := vm.New(1, vm.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := migration.DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := migration.Live(v, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErlangC measures the farm QoS model's per-slot query.
func BenchmarkErlangC(b *testing.B) {
	q := queueing.MMc{Lambda: 900, Mu: 10, C: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.MeanResponse(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterInterval measures the cost of a single reallocation
// interval at the paper's mid cluster size — the simulator's hot path.
func BenchmarkClusterInterval(b *testing.B) {
	cfg := DefaultClusterConfig(1000, LowLoad(), 1)
	c, err := NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunIntervals(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterConstruction measures building and populating a
// 1000-server cluster.
func BenchmarkClusterConstruction(b *testing.B) {
	cfg := DefaultClusterConfig(1000, LowLoad(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCluster(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
