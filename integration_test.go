package ealb

import (
	"strings"
	"testing"

	"ealb/internal/experiments"
)

// TestAllExperimentsEndToEnd runs every registered experiment at reduced
// scale and checks each produces non-trivial output. This is the
// integration test for the whole reproduction pipeline: workload
// generation → cluster protocol → metrics → rendering.
func TestAllExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	opt := experiments.Options{Seed: 7, Intervals: 40, Sizes: []int{80}}
	for _, name := range ExperimentNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := RunExperiment(name, &sb, opt); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := sb.String()
			if len(out) < 80 {
				t.Fatalf("%s produced suspiciously little output: %q", name, out)
			}
			if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Errorf("%s output contains non-finite values:\n%s", name, out)
			}
		})
	}
}

// TestExperimentOutputDeterminism runs the same experiment twice and
// requires byte-identical output — the reproducibility guarantee the
// README makes.
func TestExperimentOutputDeterminism(t *testing.T) {
	opt := experiments.Options{Seed: 3, Intervals: 20, Sizes: []int{60}}
	for _, name := range []string{"figure2", "figure3", "table2", "energy"} {
		var a, b strings.Builder
		if err := RunExperiment(name, &a, opt); err != nil {
			t.Fatal(err)
		}
		if err := RunExperiment(name, &b, opt); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s output is not deterministic", name)
		}
	}
}

// TestSeedSensitivity verifies the opposite: a different seed must
// actually change the simulation (guards against a pipeline that ignores
// its seed).
func TestSeedSensitivity(t *testing.T) {
	optA := experiments.Options{Seed: 3, Intervals: 20, Sizes: []int{60}}
	optB := experiments.Options{Seed: 4, Intervals: 20, Sizes: []int{60}}
	var a, b strings.Builder
	if err := RunExperiment("table2", &a, optA); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiment("table2", &b, optB); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different seeds produced identical table2 output")
	}
}

// TestHeadlineClaims pins the paper's three headline qualitative results
// at an end-to-end level, independent of any package internals:
// consolidation happens only at low load, it saves energy, and the
// scaling-decision crossover is earlier under high load.
func TestHeadlineClaims(t *testing.T) {
	low, err := RunClusterExperiment(150, LowLoad(), 2014, 40)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunClusterExperiment(150, HighLoad(), 2014, 40)
	if err != nil {
		t.Fatal(err)
	}
	if low.Sleeping == 0 || high.Sleeping != 0 {
		t.Errorf("sleep counts: low %d (want >0), high %d (want 0)", low.Sleeping, high.Sleeping)
	}
	if high.Crossover() >= low.Crossover() {
		t.Errorf("crossover: high %d must precede low %d", high.Crossover(), low.Crossover())
	}
	if low.MeanRatio <= 0 || high.MeanRatio <= 0 {
		t.Error("mean ratios must be positive")
	}
}
