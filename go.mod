module ealb

go 1.24
